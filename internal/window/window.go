package window

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Clock is a pluggable time source. Production rings use time.Now; tests
// substitute a fake so duration-driven epochs are deterministic.
type Clock func() time.Time

// Boundary decides when the current epoch ends. End is consulted under the
// ring lock after every Feed and on every Tick; now is the ring's Clock,
// passed as a function so edge-driven policies never pay for a time lookup
// on the ingest hot path.
type Boundary interface {
	// End reports whether the epoch that started at start and has absorbed
	// edges edges has ended.
	End(edges uint64, start time.Time, now Clock) bool
}

// Manual never ends an epoch on its own: rotation happens only through an
// explicit Rotate call. This is the default policy.
type Manual struct{}

// End implements Boundary.
func (Manual) End(uint64, time.Time, Clock) bool { return false }

// ByEdges ends an epoch once it has absorbed at least N edges — the policy
// for streams where "recent" is most naturally measured in traffic volume.
type ByEdges struct{ N uint64 }

// End implements Boundary.
func (b ByEdges) End(edges uint64, _ time.Time, _ Clock) bool {
	return b.N > 0 && edges >= b.N
}

// ByDuration ends an epoch after D of time per the ring's Clock — the
// wall-time policy of a deployed monitor ("cardinalities over the last five
// minutes"). Pair it with a periodic Tick so epochs also end while no edges
// arrive.
type ByDuration struct{ D time.Duration }

// End implements Boundary.
func (b ByDuration) End(_ uint64, start time.Time, now Clock) bool {
	return b.D > 0 && now().Sub(start) >= b.D
}

// Option configures a Ring.
type Option func(*config)

type config struct {
	boundary Boundary
	clock    Clock
}

// WithBoundary sets the epoch-boundary policy (default Manual).
func WithBoundary(b Boundary) Option { return func(c *config) { c.boundary = b } }

// WithClock sets the ring's time source (default time.Now).
func WithClock(now Clock) Option { return func(c *config) { c.clock = now } }

// Ring holds up to k live generations of E, newest first. All access runs
// under one mutex, which is what makes rotation safe to interleave with
// batched ingestion: a Feed call is attributed wholly to the epoch current
// at its start, and a concurrent Rotate or Tick waits for it.
type Ring[E any] struct {
	mu       sync.Mutex
	build    func() E
	gens     []E // gens[0] is the current generation, gens[len-1] the oldest live
	k        int
	epoch    uint64 // rotations performed so far
	edges    uint64 // edges attributed to the current epoch
	start    time.Time
	clock    Clock
	boundary Boundary
	onRetire func(E)

	// ver counts state changes (feeds, rotations, adoptions). It is bumped
	// under mu but read without it (Version), which is what lets a
	// snapshot-publication layer above the ring check "is my published view
	// still current?" with one atomic load instead of taking the lock.
	ver atomic.Uint64
}

// New returns a ring of k generations (k >= 2); build must return a fresh,
// non-nil generation and is called once now and once per rotation. It panics
// if k < 2 or build is nil or returns nil.
func New[E any](k int, build func() E, opts ...Option) *Ring[E] {
	if k < 2 {
		panic(fmt.Sprintf("window: need at least 2 generations, got %d", k))
	}
	if build == nil {
		panic("window: New requires a build function")
	}
	cfg := config{boundary: Manual{}, clock: time.Now}
	for _, o := range opts {
		o(&cfg)
	}
	r := &Ring[E]{
		build:    build,
		gens:     make([]E, 1, k),
		k:        k,
		clock:    cfg.clock,
		boundary: cfg.boundary,
	}
	r.gens[0] = mustBuild(build)
	r.start = r.clock()
	return r
}

// NewAdopted returns a ring holding the given live generations (newest
// first) at the given epoch and edges-in-epoch count, without building a
// throwaway initial generation — the constructor behind O(1) snapshot views
// and restores, which already hold the generations they want live. The same
// invariants as Adopt apply (live == min(epoch+1, k), no nil generations);
// build is kept for later rotations.
func NewAdopted[E any](k int, build func() E, gens []E, epoch, edges uint64, opts ...Option) (*Ring[E], error) {
	if k < 2 {
		panic(fmt.Sprintf("window: need at least 2 generations, got %d", k))
	}
	if build == nil {
		panic("window: NewAdopted requires a build function")
	}
	cfg := config{boundary: Manual{}, clock: time.Now}
	for _, o := range opts {
		o(&cfg)
	}
	r := &Ring[E]{
		build:    build,
		k:        k,
		clock:    cfg.clock,
		boundary: cfg.boundary,
	}
	if err := r.adoptLocked(gens, epoch, edges); err != nil {
		return nil, err
	}
	return r, nil
}

func mustBuild[E any](build func() E) E {
	g := build()
	if any(g) == nil {
		panic("window: build returned nil generation")
	}
	return g
}

// OnRetire registers fn to be called with each generation the moment a
// rotation evicts it — after it has stopped being live but before the new
// epoch opens, under the ring lock, so fn observes the retired generation's
// final state exactly once and no Feed can interleave. fn runs on whichever
// goroutine triggered the rotation (an explicit Rotate, a Tick, or a Feed
// that crossed an automatic boundary) and must be fast and must not call
// back into the ring (the lock is not reentrant). Rotations before the ring
// is full do not retire anything (the ring grows instead), and Adopt
// replaces generations without retiring them — the hook reports aged-out
// history, not every discarded pointer. Passing nil removes the hook; it is
// a setter rather than an Option because the callback's signature depends
// on the ring's type parameter.
func (r *Ring[E]) OnRetire(fn func(E)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.onRetire = fn
}

// K returns the configured generation count.
func (r *Ring[E]) K() int { return r.k }

// Epoch returns how many rotations have happened.
func (r *Ring[E]) Epoch() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.epoch
}

// Live returns the number of live generations (1 before the first rotation,
// growing to k).
func (r *Ring[E]) Live() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.gens)
}

// EdgesInEpoch returns how many edges the current epoch has absorbed.
func (r *Ring[E]) EdgesInEpoch() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.edges
}

// Feed runs fn on the current generation, attributes n more edges to the
// current epoch, then consults the boundary and rotates at most once if the
// epoch has ended. The entire call holds the ring lock, so a batch is never
// torn across generations: its edges all land in the generation that was
// current when Feed began, and any boundary it crosses takes effect only
// after the batch is fully absorbed.
func (r *Ring[E]) Feed(n uint64, fn func(current E)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	fn(r.gens[0])
	r.edges += n
	r.ver.Add(1)
	if r.boundary.End(r.edges, r.start, r.clock) {
		r.rotateLocked()
	}
}

// Version returns the ring's state-change counter without taking the lock.
// Any Feed, rotation, or Adopt advances it, so a published snapshot stamped
// with the version it was taken at is current exactly while Version still
// reports that stamp.
func (r *Ring[E]) Version() uint64 { return r.ver.Load() }

// ViewStamped runs fn on the live generations (newest first) plus the epoch
// bookkeeping and the current version, all under the ring lock — the hook a
// snapshot builder uses to freeze a consistent (generations, epoch, edges)
// triple stamped with the version to publish it under. The same caveats as
// View apply: fn must not retain the slice or call back into the ring.
func (r *Ring[E]) ViewStamped(fn func(gens []E, epoch, edges, ver uint64)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	fn(r.gens, r.epoch, r.edges, r.ver.Load())
}

// View runs fn on the live generations, newest first, under the ring lock.
// fn must not retain the slice or rotate/feed the ring (deadlock).
func (r *Ring[E]) View(fn func(live []E)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	fn(r.gens)
}

// Snapshot returns a copy of the live generation headers (newest first), the
// current epoch, and the edges the current epoch has absorbed. The
// generations themselves are shared, not cloned.
func (r *Ring[E]) Snapshot() (gens []E, epoch, edges uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]E(nil), r.gens...), r.epoch, r.edges
}

// Rotate forces an epoch boundary: the oldest of k live generations is
// discarded, every survivor ages one slot, and a fresh generation starts
// receiving edges. It returns the new epoch number.
func (r *Ring[E]) Rotate() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.rotateLocked()
	return r.epoch
}

// Tick consults the boundary without feeding any edges and reports whether
// it rotated — the hook a timer goroutine calls so duration-driven epochs
// also end during traffic lulls.
func (r *Ring[E]) Tick() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.boundary.End(r.edges, r.start, r.clock) {
		return false
	}
	r.rotateLocked()
	return true
}

func (r *Ring[E]) rotateLocked() {
	g := mustBuild(r.build)
	if len(r.gens) < r.k {
		var zero E
		r.gens = append(r.gens, zero)
	} else if r.onRetire != nil {
		r.onRetire(r.gens[len(r.gens)-1])
	}
	copy(r.gens[1:], r.gens)
	r.gens[0] = g
	r.epoch++
	r.edges = 0
	r.start = r.clock()
	r.ver.Add(1)
}

// Adopt replaces the ring's live generations (newest first), epoch, and
// edges-in-epoch counter — the restore path of checkpointing, cloning, and
// merging. It enforces the ring invariant live == min(epoch+1, k) and
// rejects nil generations; on error the ring is unchanged. The epoch's start
// time restarts at the clock's now: wall-time boundaries measure from the
// restore, since the original start instant is not meaningful across a
// process restart.
func (r *Ring[E]) Adopt(gens []E, epoch, edges uint64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.adoptLocked(gens, epoch, edges)
}

func (r *Ring[E]) adoptLocked(gens []E, epoch, edges uint64) error {
	want := uint64(r.k)
	if epoch < uint64(r.k)-1 {
		want = epoch + 1
	}
	if uint64(len(gens)) != want {
		return fmt.Errorf("window: %d live generations inconsistent with epoch %d of a %d-generation ring (want %d)",
			len(gens), epoch, r.k, want)
	}
	for _, g := range gens {
		if any(g) == nil {
			return errors.New("window: Adopt of a nil generation")
		}
	}
	r.gens = append(r.gens[:0:0], gens...)
	r.epoch = epoch
	r.edges = edges
	r.start = r.clock()
	r.ver.Add(1)
	return nil
}
