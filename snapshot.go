package streamcard

// The sharded read path. Every query surface of Sharded — Estimate, totals,
// user enumeration, top-k, checkpointing — is served from a ShardedView: a
// set of per-shard frozen snapshots published through atomic pointers and
// assembled into one epoch-consistent cut. Queries never hold the shard
// locks: the write path (Observe, ObserveBatch, Rotate) publishes each
// shard's fresh snapshot as it releases the shard lock, so view assembly is
// pure atomic loads even while a 65k-edge batch is mid-absorb. (An earlier
// design made the *reader* refresh a stale snapshot under the shard lock,
// which queued every query issued during a large ObserveBatch behind the
// whole batch — tens of milliseconds per query under continuous ingest.
// That locked refresh survives only as shardView's fallback for shards that
// were mutated before any reader existed, or out of band.) This is the
// architecture time-series storage engines use for cardinality serving —
// immutable snapshots so reads never stall writes — and it makes the write
// path the only lock domain in the stack.
//
// Consistency: a view's shards are always each a valid frozen prefix of
// their own sub-stream (users partition across shards, so there is no
// cross-shard ordering to tear), and when the shards are windowed the view
// additionally freezes ONE epoch: assembly re-reads shards until all report
// the same epoch, escalating after a few lock-free attempts to a fully
// locked cut (all shard locks, ordered, under the same rotation mutex
// Sharded.Rotate holds), so a rotation in flight can delay a query by
// microseconds but can never leak a torn pre/post-rotation mix into it.
// Stacks whose shards rotate themselves independently (per-shard ByEdges /
// ByDuration boundaries) have no common epoch to freeze; their views are
// marked epoch-inconsistent and the merged total reports ErrIncompatible,
// exactly as the locked aggregation always has for such stacks.

import (
	"fmt"
	"runtime"
	"sync"
)

// shardSnap is one shard's published snapshot: a frozen estimator stamped
// with the shard's mutation version, plus the window epoch it froze (when
// the shard is windowed).
type shardSnap struct {
	view     Estimator
	ver      uint64
	epoch    uint64
	windowed bool

	// src/srcVer guard against mutations that bypass the shard lock: a
	// windowed shard rotated (or fed) directly, not through the Sharded,
	// advances its ring version without touching sh.ver, and the shard's
	// version stamp alone would keep serving the pre-mutation snapshot as
	// fresh. srcVer is the ring version read before the snapshot was taken
	// (conservative: a racing out-of-band write makes the stamp stale, never
	// wrongly fresh). src is nil for non-windowed shards.
	src    *Windowed
	srcVer uint64
}

// srcFresh reports whether the snapshot's source ring (if any) is still at
// the version the snapshot froze.
func (p *shardSnap) srcFresh() bool {
	return p.src == nil || p.src.ring.Version() == p.srcVer
}

// estSnapshottable reports whether a shard estimator supports O(1)
// copy-on-write snapshots.
func estSnapshottable(e Estimator) bool {
	switch t := e.(type) {
	case *FreeBS, *FreeRS:
		return true
	case *Windowed:
		return t.canSnap
	}
	return false
}

// publishLocked refreshes the shard's published snapshot. Caller holds
// sh.mu; the shard estimator must be snapshottable. It is called by the
// write path as it releases the lock (so readers find a fresh snapshot
// waiting) and by shardView's fallback for snapshots staled out of band.
func (sh *shard) publishLocked() *shardSnap {
	if p := sh.snap.Load(); p != nil && p.ver == sh.ver.Load() && p.srcFresh() {
		return p // already current — nothing was written since
	}
	var src *Windowed
	var srcVer uint64
	if w, ok := sh.est.(*Windowed); ok {
		// Stamp before snapshotting: an out-of-band write racing in between
		// makes the stamp stale, which is the safe direction.
		src, srcVer = w, w.ring.Version()
	}
	view := sh.est.(Snapshotter).SnapshotView()
	p := &shardSnap{view: view, ver: sh.ver.Load(), src: src, srcVer: srcVer}
	if w, ok := view.(*Windowed); ok {
		p.epoch = uint64(w.Epoch())
		p.windowed = true
	}
	sh.snap.Store(p)
	return p
}

// shardView returns shard i's current snapshot. On the serving path this is
// one atomic load: the write path published a fresh snapshot as it released
// the shard lock, so the stamp check succeeds even while another batch is
// absorbing. The locked refresh below is the fallback for snapshots that
// went stale without a publication — a shard written before any reader
// armed publication (Sharded.Snapshot arms it on first use), or a windowed
// shard mutated out of band (srcFresh) — and costs one brief lock hold; the
// snapshot itself is an O(1) copy-on-write fork either way, with the writer
// paying the lazy array copy on its next write.
func (s *Sharded) shardView(i int) *shardSnap {
	sh := &s.shards[i]
	if p := sh.snap.Load(); p != nil && p.ver == sh.ver.Load() && p.srcFresh() {
		return p
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.publishLocked()
}

// ShardedView is one epoch-consistent frozen cut across every shard — the
// unit all sharded queries are answered from. It implements the full read
// side of AnytimeEstimator/UserRanger (the mutating methods panic), so it
// drops into TopK, SpreaderDetector, and the HTTP handlers unchanged.
// Reads of a view are lock-free and safe from any number of goroutines.
type ShardedView struct {
	parent *Sharded
	views  []Estimator
	// snaps are the per-shard snapshots the view was assembled from, kept
	// for freshness checks (version stamp plus the out-of-band srcFresh
	// guard); views duplicates their estimators so the read hot path skips
	// one indirection.
	snaps      []*shardSnap
	epoch      uint64
	windowed   bool
	consistent bool
	// settled marks an epoch-inconsistent view produced with rotations
	// excluded (the fully locked cut): the inconsistency is genuine drift
	// (shards rotating themselves on per-shard boundaries), not a rotation
	// caught mid-fan-out, so there is no better cut to wait for.
	settled bool

	// The merged union total is cached on the view: repeated /total queries
	// against the same published cut merge once. A new publication is a new
	// ShardedView, so invalidation is automatic.
	mergedOnce sync.Once
	merged     float64
	mergedErr  error
}

// fresh reports whether the view still reflects every shard's current
// version (and froze a consistent epoch, when that is achievable at all —
// a settled-inconsistent view of a genuinely drifting stack stays fresh
// until a version moves, since epochs cannot change without one).
func (v *ShardedView) fresh(s *Sharded) bool {
	if v.windowed && !v.consistent && !v.settled {
		return false
	}
	for i := range v.snaps {
		if p := v.snaps[i]; p.ver != s.shards[i].ver.Load() || !p.srcFresh() {
			return false
		}
	}
	return true
}

// snapshotRetries is how many lock-free assembly attempts Snapshot makes
// before escalating to the fully locked cut. A rotation fan-out completes
// in microseconds, so lock-free retries almost always win first.
const snapshotRetries = 4

// Snapshot returns the current epoch-consistent view of all shards, or nil
// when the shard estimators do not support snapshots (callers fall back to
// locked reads). While no shard has been written, repeated calls return the
// same published view — which is what makes the per-view caches (the merged
// total) effective — and a call after a completed write always reflects it
// (read-your-writes: the ?wait=1 ingestion contract).
func (s *Sharded) Snapshot() *ShardedView {
	if !s.snapshottable {
		return nil
	}
	if !s.readers.Load() {
		// First reader arms writer-side publication: from here on every
		// write publishes its shard's fresh snapshot as it releases the
		// lock, so assembly below is pure atomic loads. Pure-ingest stacks
		// (never queried) skip publication entirely. The load-then-store
		// keeps the common case a read of an already-set flag instead of a
		// contended write.
		s.readers.Store(true)
	}
	prev := s.set.Load()
	if prev != nil && prev.fresh(s) {
		return prev
	}
	for attempt := 0; ; attempt++ {
		v, ok := s.collect()
		switch {
		case ok:
			// One consistent epoch, assembled lock-free.
		case prev != nil && prev.windowed && !prev.consistent:
			// The stack is already diagnosed as genuinely drifting
			// (per-shard self-rotation — only collectLocked stores an
			// inconsistent view, and it marks the diagnosis settled):
			// epoch mixes are its permanent condition, so serve the
			// lock-free cut instead of paying the locked assembly on
			// every read.
			v.settled = true
		case attempt < snapshotRetries:
			runtime.Gosched() // a rotation is mid-fan-out; let it finish
			continue
		default:
			// Distinguish a slow rotation from genuine drift: with
			// rotations excluded, a lockstep stack must settle on one
			// epoch; what still disagrees is truthfully inconsistent.
			v = s.collectLocked()
		}
		return s.publishView(prev, v)
	}
}

// publishView installs v as the published cross-shard view, guarding
// against the last-writer-wins race: two assemblers can both find the set
// view stale, collect, and store — and with a plain Store the slower (and
// possibly staler) assembler would overwrite the faster one's view,
// discarding its cached merged total and, worse, publishing a cut that
// predates writes the overwritten view already reflected. CompareAndSwap
// against the prev pointer the assembler started from means only one of the
// racers installs; the loser checks whether the winner's view is fresh and
// adopts it, and otherwise returns its own view unpublished — v was
// collected after the caller's own writes, so read-your-writes holds for
// the caller either way, and no retry loop is needed (a livelock under
// heavy write traffic, for a cache whose next reader rebuilds anyway).
func (s *Sharded) publishView(prev, v *ShardedView) *ShardedView {
	if s.set.CompareAndSwap(prev, v) {
		return v
	}
	if cur := s.set.Load(); cur != nil && cur.fresh(s) {
		return cur
	}
	return v
}

// assemble builds a view by reading each shard's snapshot through get,
// tracking the windowed-epoch consistency bookkeeping shared by the
// lock-free and fully locked assembly paths.
func (s *Sharded) assemble(get func(i int) *shardSnap) *ShardedView {
	n := len(s.shards)
	v := &ShardedView{
		parent:     s,
		views:      make([]Estimator, n),
		snaps:      make([]*shardSnap, n),
		consistent: true,
	}
	first := true
	for i := range s.shards {
		p := get(i)
		v.views[i], v.snaps[i] = p.view, p
		if p.windowed {
			v.windowed = true
			if first {
				v.epoch, first = p.epoch, false
			} else if p.epoch != v.epoch {
				v.consistent = false
			}
		}
	}
	return v
}

// collect assembles a view lock-free (per-shard fast paths; a brief shard
// lock only where a shard's snapshot is stale). ok is false when windowed
// shards reported different epochs — a rotation was caught mid-fan-out.
func (s *Sharded) collect() (v *ShardedView, ok bool) {
	v = s.assemble(s.shardView)
	return v, v.consistent
}

// collectLocked assembles a view under the rotation mutex plus every shard
// lock (ascending order — no other path holds two shard locks, so this
// cannot deadlock): with rotations excluded, a lockstep stack always yields
// one consistent epoch. Only independently self-rotating shards can still
// disagree here, and then the view is marked settled: truthfully
// inconsistent with nothing to wait for, so later reads of the unchanged
// stack reuse it instead of re-escalating.
func (s *Sharded) collectLocked() *ShardedView {
	s.rotMu.Lock()
	defer s.rotMu.Unlock()
	for i := range s.shards {
		s.shards[i].mu.Lock()
	}
	defer func() {
		for i := range s.shards {
			s.shards[i].mu.Unlock()
		}
	}()
	v := s.assemble(func(i int) *shardSnap { return s.shards[i].publishLocked() })
	if !v.consistent {
		v.settled = true
	}
	return v
}

// NumShards returns the number of per-shard views.
func (v *ShardedView) NumShards() int { return len(v.views) }

// ShardView returns shard i's frozen estimator — the checkpoint writer
// serializes these in shard order. Treat it as read-only.
func (v *ShardedView) ShardView(i int) Estimator { return v.views[i] }

// Epoch returns the window epoch this view froze (0 for non-windowed
// shards). Meaningful when EpochConsistent reports true.
func (v *ShardedView) Epoch() int { return int(v.epoch) }

// EpochConsistent reports whether every windowed shard froze the same epoch
// in this view. It is always true for views of lockstep stacks (rotations
// issued through Sharded.Rotate) and for non-windowed shards; only shards
// rotating themselves independently can make it false.
func (v *ShardedView) EpochConsistent() bool { return !v.windowed || v.consistent }

// Observe implements Estimator; a view is read-only and panics.
func (v *ShardedView) Observe(user, item uint64) {
	panic("streamcard: ShardedView is a read-only snapshot; Observe on the Sharded instead")
}

// ObserveBatch implements Estimator; a view is read-only and panics.
func (v *ShardedView) ObserveBatch(edges []Edge) {
	panic("streamcard: ShardedView is a read-only snapshot; ObserveBatch on the Sharded instead")
}

// Estimate implements Estimator: the queried user's shard view answers.
func (v *ShardedView) Estimate(user uint64) float64 {
	return v.views[v.parent.ShardIndex(user)].Estimate(user)
}

// TotalDistinct implements Estimator (sum of the frozen shard totals).
func (v *ShardedView) TotalDistinct() float64 {
	total := 0.0
	for _, e := range v.views {
		total += e.TotalDistinct()
	}
	return total
}

// MemoryBits implements Estimator (sum across the frozen shards).
func (v *ShardedView) MemoryBits() int64 {
	var m int64
	for _, e := range v.views {
		m += e.MemoryBits()
	}
	return m
}

// Name implements Estimator.
func (v *ShardedView) Name() string { return v.parent.name }

// anytime narrows shard i's view, panicking with the aggregate method's
// name on estimators that keep no per-user estimates (same contract as the
// locked Sharded aggregations).
func (v *ShardedView) anytime(i int, method string) AnytimeEstimator {
	a, ok := v.views[i].(AnytimeEstimator)
	if !ok {
		panic(fmt.Sprintf("streamcard: ShardedView.%s needs AnytimeEstimator shards (FreeBS/FreeRS/Windowed), not %s", method, v.views[i].Name()))
	}
	return a
}

// Users implements AnytimeEstimator: every user exactly once (users
// partition across shards), shards in index order and ascending user IDs
// within each — the same fully deterministic order as Sharded.Users, but
// with no lock held for the duration of the stream: fn may be arbitrarily
// slow, or even call back into the parent Sharded, without stalling ingest.
// The expensive part — each shard's cross-generation window fold — is
// pre-warmed on the worker pool first; only the ordered streaming of fn
// stays on this goroutine.
func (v *ShardedView) Users(fn func(user uint64, estimate float64)) {
	v.prepareFolds()
	for i := range v.views {
		v.anytime(i, "Users").Users(fn)
	}
}

// RangeUsers implements UserRanger: the unordered allocation-free
// counterpart of Users, same exactly-once fan-out and the same parallel
// fold pre-warm (fn itself is still called serially).
func (v *ShardedView) RangeUsers(fn func(user uint64, estimate float64)) {
	v.prepareFolds()
	for i := range v.views {
		rangeUsers(v.anytime(i, "RangeUsers"), fn)
	}
}

// NumUsers implements AnytimeEstimator (sum of per-shard counts; exact,
// since users partition across shards). The per-shard counts — each a
// window fold on windowed stacks — run on the worker pool.
func (v *ShardedView) NumUsers() int {
	n := len(v.views)
	ests := make([]AnytimeEstimator, n)
	for i := range ests {
		ests[i] = v.anytime(i, "NumUsers")
	}
	counts := make([]int, n)
	forEachShard(n, func(i int) {
		counts[i] = ests[i].NumUsers()
	})
	total := 0
	for _, c := range counts {
		total += c
	}
	return total
}

// TotalDistinctMerged merges the frozen shard sketches into one union
// sketch and returns its array-derived total — the low-variance reading
// TotalDistinctMerged on the Sharded serves. The merge runs entirely on the
// frozen views (no shard lock is ever taken) and the result is cached on
// the view: as long as no shard is written, repeated calls pay one merge
// total. Requirements are unchanged: identically built shards (shared
// seed), and for windowed shards one common epoch — a view of an
// epoch-inconsistent stack reports ErrIncompatible, as the locked
// aggregation did.
func (v *ShardedView) TotalDistinctMerged() (float64, error) {
	v.mergedOnce.Do(func() {
		if v.windowed && !v.consistent {
			v.mergedErr = fmt.Errorf("streamcard: shards at different epochs: %w", ErrIncompatible)
			return
		}
		v.merged, v.mergedErr = mergeEstimators(v.views)
	})
	return v.merged, v.mergedErr
}

// mergeEstimators clones the first estimator and folds the rest in — the
// same clone-then-fold aggregation as the locked shard merge, over an
// already frozen slice.
func mergeEstimators(views []Estimator) (float64, error) {
	switch views[0].(type) {
	case *FreeBS:
		return mergeViewsTyped(views, func(e Estimator) (*FreeBS, bool) { f, ok := e.(*FreeBS); return f, ok })
	case *FreeRS:
		return mergeViewsTyped(views, func(e Estimator) (*FreeRS, bool) { f, ok := e.(*FreeRS); return f, ok })
	case *Windowed:
		return mergeWindowedViews(views)
	default:
		return 0, fmt.Errorf("streamcard: %s shards are not mergeable: %w",
			views[0].Name(), ErrIncompatible)
	}
}

// mergeViewsTyped is mergeShards' frozen-slice twin: no locks, same
// clone-then-fold shape, generic over the shared mergeable constraint.
func mergeViewsTyped[T mergeable[T]](views []Estimator, cast func(Estimator) (T, bool)) (float64, error) {
	var combined T
	for i, e := range views {
		est, ok := cast(e)
		if !ok {
			return 0, fmt.Errorf("streamcard: shard %d is not %T: %w", i, combined, ErrIncompatible)
		}
		if i == 0 {
			combined = est.Clone()
		} else if err := combined.Merge(est); err != nil {
			return 0, err
		}
	}
	return combined.TotalDistinct(), nil
}

// mergeWindowedViews folds frozen windowed shard views generation by
// generation into a private clone of the first (foldFrom: no per-fold
// atomicity cost — on error the accumulator is discarded whole).
func mergeWindowedViews(views []Estimator) (float64, error) {
	var combined *Windowed
	for i, e := range views {
		w, ok := e.(*Windowed)
		if !ok {
			return 0, fmt.Errorf("streamcard: shard %d is not *Windowed: %w", i, ErrIncompatible)
		}
		if i == 0 {
			combined = w.Clone()
			continue
		}
		if err := combined.foldFrom(w); err != nil {
			return 0, err
		}
	}
	return combined.TotalDistinct(), nil
}

var (
	_ Estimator        = (*ShardedView)(nil)
	_ AnytimeEstimator = (*ShardedView)(nil)
	_ UserRanger       = (*ShardedView)(nil)
)
