package streamcard

// Batched ingestion is a fast path, not a semantic fork: for every estimator
// in the library, feeding a stream through ObserveBatch (in assorted chunk
// sizes) must leave estimates bit-identical to feeding the same stream edge
// by edge. The assertion is exact float equality — any divergence in hash
// hoisting, run detection, or shard grouping shows up immediately.

import (
	"math"
	"testing"

	"repro/internal/hashing"
)

// burstStream generates n edges in per-user bursts with duplicates, the
// arrival shape the batch path amortizes over. Deterministic in seed.
func burstStream(n int, seed uint64) []Edge {
	rng := hashing.NewRNG(seed)
	edges := make([]Edge, 0, n)
	for len(edges) < n {
		u := uint64(rng.Intn(400) + 1)
		run := rng.Intn(16) + 1
		for r := 0; r < run && len(edges) < n; r++ {
			item := rng.Uint64()
			if rng.Float64() < 0.15 {
				item = uint64(rng.Intn(64)) // repeats exercise duplicate handling
			}
			edges = append(edges, Edge{User: u, Item: item})
		}
	}
	return edges
}

func TestObserveBatchMatchesObserve(t *testing.T) {
	builders := map[string]func() Estimator{
		"FreeBS": func() Estimator { return NewFreeBS(1<<14, WithSeed(5)) },
		"FreeRS": func() Estimator { return NewFreeRS(1<<14, WithSeed(5)) },
		"CSE":    func() Estimator { return NewCSE(1<<14, 128, WithSeed(5)) },
		"vHLL":   func() Estimator { return NewVHLL(1<<14, 128, WithSeed(5)) },
		"LPC":    func() Estimator { return NewPerUserLPC(256, WithSeed(5)) },
		"HLL++":  func() Estimator { return NewPerUserHLLPP(32, WithSeed(5)) },
		"Sharded": func() Estimator {
			return NewSharded(4, func(i int) Estimator {
				return NewFreeRS(1<<12, WithSeed(uint64(i)+1))
			})
		},
		"Windowed": func() Estimator {
			return NewWindowed(func() Estimator { return NewFreeBS(1<<14, WithSeed(5)) })
		},
	}
	edges := burstStream(12000, 21)
	for name, build := range builders {
		t.Run(name, func(t *testing.T) {
			seq := build()
			bat := build()
			for _, e := range edges {
				seq.Observe(e.User, e.Item)
			}
			for i, chunks := 0, []int{1, 7, 300, 64, 1023}; i < len(edges); {
				c := chunks[i%len(chunks)]
				if i+c > len(edges) {
					c = len(edges) - i
				}
				bat.ObserveBatch(edges[i : i+c])
				i += c
			}
			seen := map[uint64]struct{}{}
			for _, e := range edges {
				if _, ok := seen[e.User]; ok {
					continue
				}
				seen[e.User] = struct{}{}
				if got, want := bat.Estimate(e.User), seq.Estimate(e.User); got != want {
					t.Fatalf("%s user %d: batch %v != sequential %v (must be bit-identical)",
						name, e.User, got, want)
				}
			}
			got, want := bat.TotalDistinct(), seq.TotalDistinct()
			if name == "LPC" || name == "HLL++" {
				// These sum a map of per-user estimates, so the reading
				// depends on Go's randomized iteration order; the states
				// are identical (checked per user above) but the sum can
				// differ in the last bits between two instances.
				if math.Abs(got-want) > 1e-9*math.Abs(want) {
					t.Fatalf("%s TotalDistinct: batch %v != sequential %v", name, got, want)
				}
			} else if got != want {
				t.Fatalf("%s TotalDistinct: batch %v != sequential %v", name, got, want)
			}
		})
	}
}

// TestObserveBatchUnsortedInput pins that batching does not require (or
// silently assume) user-grouped input: a fully interleaved stream — worst
// case for run detection, every run length 1 — still matches exactly.
func TestObserveBatchUnsortedInput(t *testing.T) {
	rng := hashing.NewRNG(3)
	edges := make([]Edge, 8000)
	for i := range edges {
		edges[i] = Edge{User: uint64(rng.Intn(3000)), Item: rng.Uint64()}
	}
	seq := NewFreeRS(1 << 12)
	bat := NewFreeRS(1 << 12)
	for _, e := range edges {
		seq.Observe(e.User, e.Item)
	}
	bat.ObserveBatch(edges)
	seq.Users(func(u uint64, e float64) {
		if bat.Estimate(u) != e {
			t.Fatalf("user %d: %v != %v", u, bat.Estimate(u), e)
		}
	})
}
