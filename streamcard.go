// Package streamcard estimates per-user cardinalities over graph streams —
// the number of distinct items each user connects to, available at any
// moment while edges keep arriving.
//
// It is a from-scratch Go implementation of "Utilizing Dynamic Properties of
// Sharing Bits and Registers to Estimate User Cardinalities over Time"
// (Wang, Jia, Zhang, Tao, Guan, Towsley — ICDE 2019). The paper's two
// algorithms are the headline API:
//
//   - FreeBS — parameter-free bit sharing. One shared bit array; O(1) per
//     edge; unbiased anytime estimates; range up to M·ln M.
//   - FreeRS — parameter-free register sharing. One shared register array;
//     O(1) per edge; unbiased anytime estimates; range up to ~2^32.
//
// The baselines the paper compares against are included as full
// implementations under the same interface: CSE and vHLL (shared-array
// virtual sketches) and per-user LPC and HyperLogLog++ sketches.
//
// # Quick start
//
//	est := streamcard.NewFreeRS(1 << 20) // one million bits of sketch memory
//	for _, e := range edges {
//	    est.Observe(e.User, e.Item)
//	}
//	fmt.Println(est.Estimate(someUser), est.TotalDistinct())
//
// Estimates are available after every single Observe — there is no
// end-of-stream finalization step.
//
// String identifiers can be hashed into the uint64 key space with Key.
package streamcard

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cse"
	"repro/internal/hashing"
	"repro/internal/hll"
	"repro/internal/lpc"
	"repro/internal/stream"
	"repro/internal/superspreader"
	"repro/internal/vhll"
)

// Edge is one user-item pair. It aliases the internal stream type, so edge
// slices produced by the stream codec and workload generators feed
// ObserveBatch without conversion.
type Edge = stream.Edge

// ErrIncompatible is reported (wrapped) by Merge and TotalDistinctMerged when
// sketches were not built with identical parameters (size, seed, options) —
// such sketches place the same pair at different cells, so their union is
// meaningless.
var ErrIncompatible = core.ErrIncompatible

// Estimator is the common interface of all six methods: feed user-item
// edges, query any user's cardinality estimate at any time.
type Estimator interface {
	// Observe processes one edge (user, item). Duplicate edges are handled
	// by construction: re-observing a pair never inflates estimates.
	Observe(user, item uint64)
	// ObserveBatch processes a slice of edges with exactly the semantics of
	// calling Observe on each in order — estimates afterwards are
	// bit-identical — while amortizing per-edge overhead (pair-hash
	// prefixes, estimate-map access, shard locks) over runs of consecutive
	// edges that share a user. Feed bursty traffic in arrival order to
	// benefit; pre-grouping by user is unnecessary and would change
	// nothing but the amortization.
	ObserveBatch(edges []Edge)
	// Estimate returns the current cardinality estimate for user; 0 for
	// users that have not been observed.
	Estimate(user uint64) float64
	// TotalDistinct estimates the total number of distinct (user, item)
	// pairs observed so far.
	TotalDistinct() float64
	// MemoryBits reports the sketch memory in use, in bits (per-user
	// bookkeeping such as estimate counters excluded).
	MemoryBits() int64
	// Name returns the method's name as the paper spells it.
	Name() string
}

// AnytimeEstimator is implemented by FreeBS and FreeRS, which additionally
// maintain every user's running estimate and can therefore enumerate users
// in O(users) with no per-user query cost.
type AnytimeEstimator interface {
	Estimator
	// Users calls fn for every user with a nonzero estimate, in ascending
	// user order — the deterministic enumeration: equal logical states
	// (however reached: ingestion, Merge, Clone, checkpoint/restore)
	// enumerate identically. Sorting costs O(users log users); consumers
	// that do not need the order should prefer UserRanger.RangeUsers.
	Users(fn func(user uint64, estimate float64))
	// NumUsers returns the number of users with nonzero estimates, in O(1)
	// for FreeBS/FreeRS (O(users) for Windowed, which must merge
	// generations).
	NumUsers() int
}

// Snapshotter is the read side of the snapshot-isolated serving
// architecture: estimators that can produce an O(1), logically frozen,
// read-only view of their current state. Reads of the view — Estimate,
// TotalDistinct, Users, TopK, MarshalBinary — need no synchronization with
// ongoing ingestion, because the view shares its backing arrays with the
// live estimator copy-on-write: the writer detaches onto private arrays
// before its first post-snapshot write, so a long enumeration or a slow
// checkpoint never holds the sketch locks.
//
// FreeBS, FreeRS, and Windowed over either implement it (Sharded publishes
// whole snapshot sets through its own Snapshot method). A Windowed over a
// non-snapshottable underlying estimator (CSE, vHLL, per-user baselines)
// returns nil from SnapshotView, and callers fall back to locked reads.
type Snapshotter interface {
	Estimator
	// SnapshotView returns a frozen read-only view of the current state, or
	// nil if the estimator's composition cannot produce one. The call must
	// be serialized with writers (it is O(1), so callers take it under the
	// same lock that guards Observe); reads of the returned view are then
	// lock-free.
	SnapshotView() Estimator
}

// UserRanger is the unordered counterpart of AnytimeEstimator's Users: fn
// is called once per user with a nonzero estimate, in the estimate table's
// layout order — allocation-free and without Users' sort. The order is
// deterministic for a given operation history but is NOT sorted and NOT
// stable across checkpoint/restore, so it is for aggregations that treat
// each user independently (top-k selection, windowed sums, shard fan-ins),
// not for output that must be reproducible across restarts. All estimators
// implementing AnytimeEstimator here (FreeBS, FreeRS, Windowed, Sharded)
// also implement UserRanger.
type UserRanger interface {
	RangeUsers(fn func(user uint64, estimate float64))
}

// rangeUsers iterates est's users through the cheapest surface it offers:
// RangeUsers when implemented, sorted Users otherwise.
func rangeUsers(est AnytimeEstimator, fn func(user uint64, estimate float64)) {
	if r, ok := est.(UserRanger); ok {
		r.RangeUsers(fn)
		return
	}
	est.Users(fn)
}

// Key hashes an arbitrary string identifier (an IP address, a URL, a user
// handle) into the uint64 key space used by Observe.
func Key(s string) uint64 { return hashing.Hash64([]byte(s), 0x5eed) }

// Option configures an estimator constructor.
type Option func(*options)

type options struct {
	seed uint64
}

// WithSeed sets the hash seed (default 1). Estimators with equal seeds are
// deterministic replicas; independent runs should use distinct seeds.
func WithSeed(seed uint64) Option { return func(o *options) { o.seed = seed } }

func buildOptions(opts []Option) options {
	o := options{seed: 1}
	for _, f := range opts {
		f(&o)
	}
	return o
}

// registerFloor is the minimum shared-array size, in registers, accepted by
// the register-sharing constructors (NewFreeRS, NewVHLL). The floor is 2
// because both methods' estimators are undefined on a single register —
// FreeRS's HLL view needs a harmonic mean over M ≥ 2 registers and vHLL's
// noise-removal term divides by M−m ≥ 1 — and a memory budget below even one
// register holds no sketch state at all. Sub-floor budgets are a
// configuration bug, not a degraded mode, so the constructors panic instead
// of silently rounding up.
const registerFloor = 2

// registerCount converts a memory budget in bits into a register count for
// the given register width, panicking on budgets below the floor.
func registerCount(memoryBits, width int, constructor string) int {
	regs := memoryBits / width
	if regs < registerFloor {
		panic(fmt.Sprintf("streamcard: %s needs at least %d bits of memory (%d registers of %d bits); got %d",
			constructor, registerFloor*width, registerFloor, width, memoryBits))
	}
	return regs
}

// ---- FreeBS ----

// FreeBS wraps core.FreeBS behind the Estimator interface.
type FreeBS struct{ inner *core.FreeBS }

// NewFreeBS returns a FreeBS estimator with memoryBits bits of shared sketch
// memory — the method's only parameter.
func NewFreeBS(memoryBits int, opts ...Option) *FreeBS {
	o := buildOptions(opts)
	return &FreeBS{inner: core.NewFreeBS(memoryBits, o.seed)}
}

// Observe implements Estimator.
func (f *FreeBS) Observe(user, item uint64) { f.inner.Observe(user, item) }

// ObserveBatch implements Estimator.
func (f *FreeBS) ObserveBatch(edges []Edge) { f.inner.ObserveBatch(edges) }

// Merge folds other into f so that f summarizes the union of both input
// streams; other is unchanged. Both sketches must have been built with the
// same memory size and seed (ErrIncompatible otherwise). The shared bit
// array unions exactly — bit-identical to a single sketch fed both streams,
// so TotalDistinct is exact after a merge — and per-user running estimates
// are reconciled through the paper's update rule (see internal/core).
func (f *FreeBS) Merge(other *FreeBS) error {
	if other == nil {
		return fmt.Errorf("streamcard: FreeBS.Merge(nil): %w", ErrIncompatible)
	}
	return f.inner.Merge(other.inner)
}

// Clone returns an independent deep copy of f.
func (f *FreeBS) Clone() *FreeBS { return &FreeBS{inner: f.inner.Clone()} }

// Snapshot returns an O(1) copy-on-write fork of f, logically frozen at the
// current state: every read on it (estimates, totals, Users, TopK,
// checkpointing) behaves exactly like a deep Clone taken at the same
// instant, but nothing is copied until the parent's next write touches a
// shared array. Serialize the call with writers; reads of the snapshot are
// then lock-free.
func (f *FreeBS) Snapshot() *FreeBS { return &FreeBS{inner: f.inner.Snapshot()} }

// SnapshotView implements Snapshotter.
func (f *FreeBS) SnapshotView() Estimator { return f.Snapshot() }

// Estimate implements Estimator.
func (f *FreeBS) Estimate(user uint64) float64 { return f.inner.Estimate(user) }

// TotalDistinct implements Estimator using the low-variance global
// linear-counting view of the shared array.
func (f *FreeBS) TotalDistinct() float64 { return f.inner.TotalDistinctLPC() }

// MemoryBits implements Estimator.
func (f *FreeBS) MemoryBits() int64 { return f.inner.MemoryBits() }

// Name implements Estimator.
func (f *FreeBS) Name() string { return "FreeBS" }

// Users implements AnytimeEstimator (ascending user order).
func (f *FreeBS) Users(fn func(uint64, float64)) { f.inner.Users(fn) }

// RangeUsers implements UserRanger (layout order, allocation-free).
func (f *FreeBS) RangeUsers(fn func(uint64, float64)) { f.inner.RangeUsers(fn) }

// NumUsers implements AnytimeEstimator.
func (f *FreeBS) NumUsers() int { return f.inner.NumUsers() }

// Saturated reports whether the shared array has no zero bits left; past
// this point new pairs can no longer be counted (the M·ln M range limit).
func (f *FreeBS) Saturated() bool { return f.inner.Saturated() }

// ---- FreeRS ----

// FreeRS wraps core.FreeRS behind the Estimator interface.
type FreeRS struct{ inner *core.FreeRS }

// NewFreeRS returns a FreeRS estimator with memoryBits bits of shared sketch
// memory, organized as memoryBits/5 five-bit registers (the paper's layout).
// It panics if the budget is below the shared two-register floor (see
// registerFloor).
func NewFreeRS(memoryBits int, opts ...Option) *FreeRS {
	o := buildOptions(opts)
	regs := registerCount(memoryBits, core.DefaultRegisterWidth, "NewFreeRS")
	return &FreeRS{inner: core.NewFreeRS(regs, o.seed)}
}

// Observe implements Estimator.
func (f *FreeRS) Observe(user, item uint64) { f.inner.Observe(user, item) }

// ObserveBatch implements Estimator.
func (f *FreeRS) ObserveBatch(edges []Edge) { f.inner.ObserveBatch(edges) }

// Merge folds other into f so that f summarizes the union of both input
// streams; other is unchanged. Both sketches must have been built with the
// same memory size and seed (ErrIncompatible otherwise). The shared register
// array takes the register-wise max — bit-identical to a single sketch fed
// both streams, so TotalDistinct is exact after a merge — and per-user
// running estimates are reconciled via the array-derived totals (see
// internal/core).
func (f *FreeRS) Merge(other *FreeRS) error {
	if other == nil {
		return fmt.Errorf("streamcard: FreeRS.Merge(nil): %w", ErrIncompatible)
	}
	return f.inner.Merge(other.inner)
}

// Clone returns an independent deep copy of f.
func (f *FreeRS) Clone() *FreeRS { return &FreeRS{inner: f.inner.Clone()} }

// Snapshot returns an O(1) copy-on-write fork of f, logically frozen at the
// current state; see FreeBS.Snapshot for the contract.
func (f *FreeRS) Snapshot() *FreeRS { return &FreeRS{inner: f.inner.Snapshot()} }

// SnapshotView implements Snapshotter.
func (f *FreeRS) SnapshotView() Estimator { return f.Snapshot() }

// Estimate implements Estimator.
func (f *FreeRS) Estimate(user uint64) float64 { return f.inner.Estimate(user) }

// TotalDistinct implements Estimator using the global HLL view.
func (f *FreeRS) TotalDistinct() float64 { return f.inner.TotalDistinctHLL() }

// MemoryBits implements Estimator.
func (f *FreeRS) MemoryBits() int64 { return f.inner.MemoryBits() }

// Name implements Estimator.
func (f *FreeRS) Name() string { return "FreeRS" }

// Users implements AnytimeEstimator (ascending user order).
func (f *FreeRS) Users(fn func(uint64, float64)) { f.inner.Users(fn) }

// RangeUsers implements UserRanger (layout order, allocation-free).
func (f *FreeRS) RangeUsers(fn func(uint64, float64)) { f.inner.RangeUsers(fn) }

// NumUsers implements AnytimeEstimator.
func (f *FreeRS) NumUsers() int { return f.inner.NumUsers() }

// ---- CSE ----

// CSE wraps the bit-sharing baseline (Yoon et al.) behind Estimator.
type CSE struct{ inner *cse.CSE }

// NewCSE returns a CSE estimator: memoryBits shared bits, virtual sketches
// of virtualM bits per user. Estimates cost O(virtualM).
func NewCSE(memoryBits, virtualM int, opts ...Option) *CSE {
	o := buildOptions(opts)
	return &CSE{inner: cse.New(memoryBits, virtualM, o.seed)}
}

// Observe implements Estimator.
func (c *CSE) Observe(user, item uint64) { c.inner.Observe(user, item) }

// ObserveBatch implements Estimator.
func (c *CSE) ObserveBatch(edges []Edge) { c.inner.ObserveBatch(edges) }

// Estimate implements Estimator.
func (c *CSE) Estimate(user uint64) float64 { return c.inner.Estimate(user) }

// TotalDistinct implements Estimator.
func (c *CSE) TotalDistinct() float64 { return c.inner.TotalEstimate() }

// MemoryBits implements Estimator.
func (c *CSE) MemoryBits() int64 { return c.inner.MemoryBits() }

// Name implements Estimator.
func (c *CSE) Name() string { return "CSE" }

// ---- vHLL ----

// VHLL wraps the register-sharing baseline (Xiao et al.) behind Estimator.
type VHLL struct{ inner *vhll.VHLL }

// NewVHLL returns a vHLL estimator: memoryBits/5 shared five-bit registers,
// virtual sketches of virtualM registers per user. Estimates cost
// O(virtualM). It panics if the budget is below the shared two-register
// floor (see registerFloor) or virtualM does not fit under the register
// count.
func NewVHLL(memoryBits, virtualM int, opts ...Option) *VHLL {
	o := buildOptions(opts)
	regs := registerCount(memoryBits, vhll.Width, "NewVHLL")
	return &VHLL{inner: vhll.New(regs, virtualM, o.seed)}
}

// Observe implements Estimator.
func (v *VHLL) Observe(user, item uint64) { v.inner.Observe(user, item) }

// ObserveBatch implements Estimator.
func (v *VHLL) ObserveBatch(edges []Edge) { v.inner.ObserveBatch(edges) }

// Estimate implements Estimator.
func (v *VHLL) Estimate(user uint64) float64 { return v.inner.Estimate(user) }

// TotalDistinct implements Estimator.
func (v *VHLL) TotalDistinct() float64 { return v.inner.TotalEstimate() }

// MemoryBits implements Estimator.
func (v *VHLL) MemoryBits() int64 { return v.inner.MemoryBits() }

// Name implements Estimator.
func (v *VHLL) Name() string { return "vHLL" }

// ---- per-user LPC ----

// PerUserLPC wraps the per-user linear-counting baseline behind Estimator.
type PerUserLPC struct{ inner *lpc.PerUser }

// NewPerUserLPC returns an estimator that lazily allocates an independent
// bitsPerUser-bit LPC sketch for every observed user.
func NewPerUserLPC(bitsPerUser int, opts ...Option) *PerUserLPC {
	o := buildOptions(opts)
	return &PerUserLPC{inner: lpc.NewPerUser(bitsPerUser, o.seed)}
}

// Observe implements Estimator.
func (p *PerUserLPC) Observe(user, item uint64) { p.inner.Observe(user, item) }

// ObserveBatch implements Estimator.
func (p *PerUserLPC) ObserveBatch(edges []Edge) { p.inner.ObserveBatch(edges) }

// Estimate implements Estimator.
func (p *PerUserLPC) Estimate(user uint64) float64 { return p.inner.Estimate(user) }

// TotalDistinct implements Estimator (sum of per-user estimates, O(users)).
func (p *PerUserLPC) TotalDistinct() float64 {
	total := 0.0
	p.inner.Users(func(u uint64) { total += p.inner.Estimate(u) })
	return total
}

// MemoryBits implements Estimator (grows with the number of users).
func (p *PerUserLPC) MemoryBits() int64 { return p.inner.MemoryBits() }

// Name implements Estimator.
func (p *PerUserLPC) Name() string { return "LPC" }

// ---- per-user HLL++ ----

// PerUserHLLPP wraps the per-user HyperLogLog++ baseline behind Estimator.
type PerUserHLLPP struct{ inner *hll.PerUser }

// NewPerUserHLLPP returns an estimator that lazily allocates an independent
// HLL++ sketch of registersPerUser six-bit registers for every observed
// user (sparse-exact below the memory-parity threshold).
func NewPerUserHLLPP(registersPerUser int, opts ...Option) *PerUserHLLPP {
	o := buildOptions(opts)
	return &PerUserHLLPP{inner: hll.NewPerUser(registersPerUser, o.seed)}
}

// Observe implements Estimator.
func (p *PerUserHLLPP) Observe(user, item uint64) { p.inner.Observe(user, item) }

// ObserveBatch implements Estimator.
func (p *PerUserHLLPP) ObserveBatch(edges []Edge) { p.inner.ObserveBatch(edges) }

// Estimate implements Estimator.
func (p *PerUserHLLPP) Estimate(user uint64) float64 { return p.inner.Estimate(user) }

// TotalDistinct implements Estimator (sum of per-user estimates, O(users)).
func (p *PerUserHLLPP) TotalDistinct() float64 {
	total := 0.0
	p.inner.Users(func(u uint64) { total += p.inner.Estimate(u) })
	return total
}

// MemoryBits implements Estimator.
func (p *PerUserHLLPP) MemoryBits() int64 { return p.inner.MemoryBits() }

// Name implements Estimator.
func (p *PerUserHLLPP) Name() string { return "HLL++" }

// ---- super-spreader detection ----

// Spreader is one detected super spreader.
type Spreader = superspreader.Spreader

// SpreaderDetector flags users whose estimated cardinality reaches delta
// times the estimated total — the paper's §V-F case study, runnable on the
// fly against any AnytimeEstimator.
type SpreaderDetector struct{ inner *superspreader.Detector }

// NewSpreaderDetector returns a detector over est with relative threshold
// delta in (0, 1).
func NewSpreaderDetector(est AnytimeEstimator, delta float64) *SpreaderDetector {
	return &SpreaderDetector{inner: superspreader.NewDetector(adaptor{est}, delta)}
}

// Threshold returns the current absolute threshold delta·TotalDistinct().
func (d *SpreaderDetector) Threshold() float64 { return d.inner.Threshold() }

// Detect returns the currently flagged users, sorted by descending estimate.
func (d *SpreaderDetector) Detect() []Spreader { return d.inner.Detect() }

// adaptor narrows AnytimeEstimator to the superspreader.Estimator
// interface. Its Users uses the unordered allocation-free iteration when
// available: the detector re-sorts its findings, so enumeration order never
// reaches the output.
type adaptor struct{ e AnytimeEstimator }

func (a adaptor) Estimate(u uint64) float64      { return a.e.Estimate(u) }
func (a adaptor) TotalDistinct() float64         { return a.e.TotalDistinct() }
func (a adaptor) Users(fn func(uint64, float64)) { rangeUsers(a.e, fn) }

// Interface conformance checks.
var (
	_ AnytimeEstimator = (*FreeBS)(nil)
	_ AnytimeEstimator = (*FreeRS)(nil)
	_ UserRanger       = (*FreeBS)(nil)
	_ UserRanger       = (*FreeRS)(nil)
	_ Snapshotter      = (*FreeBS)(nil)
	_ Snapshotter      = (*FreeRS)(nil)
	_ Estimator        = (*CSE)(nil)
	_ Estimator        = (*VHLL)(nil)
	_ Estimator        = (*PerUserLPC)(nil)
	_ Estimator        = (*PerUserHLLPP)(nil)
)
